(* Tests for M-Ring Paxos (Algorithm 2) and U-Ring Paxos (Algorithm 3). *)

type Simnet.payload += Cmd of int

let cmd_ids (v : Paxos.Value.t) =
  List.filter_map
    (fun (it : Paxos.Value.item) -> match it.app with Cmd i -> Some i | _ -> None)
    v.items

(* --- M-Ring Paxos -------------------------------------------------------- *)

type mring_env = {
  engine : Sim.Engine.t;
  net : Simnet.t;
  mr : Ringpaxos.Mring.t;
  seqs : (int, int list ref) Hashtbl.t; (* learner -> delivered cmd ids, reversed *)
  skips : (int, int ref) Hashtbl.t; (* learner -> count of None deliveries *)
}

let make_mring ?(config = Ringpaxos.Mring.default_config) ?speculative ?(n_proposers = 1)
    ?(n_learners = 2) ?(learner_parts = fun _ -> [ 0 ]) ?(seed = 9) () =
  let engine = Sim.Engine.create () in
  let rng = Sim.Rng.create seed in
  let net = Simnet.create engine rng in
  let seqs = Hashtbl.create 8 and skips = Hashtbl.create 8 in
  for i = 0 to n_learners - 1 do
    Hashtbl.replace seqs i (ref []);
    Hashtbl.replace skips i (ref 0)
  done;
  let deliver ~learner ~inst:_ v =
    match v with
    | Some v ->
        let r = Hashtbl.find seqs learner in
        r := List.rev_append (cmd_ids v) !r
    | None -> incr (Hashtbl.find skips learner)
  in
  let mr =
    Ringpaxos.Mring.create ?speculative net config ~n_proposers ~n_learners ~learner_parts
      ~deliver
  in
  { engine; net; mr; seqs; skips }

let seq env l = List.rev !(Hashtbl.find env.seqs l)

let test_mring_basic () =
  let env = make_mring () in
  for i = 1 to 40 do
    ignore (Ringpaxos.Mring.submit env.mr ~proposer:0 ~size:256 (Cmd i))
  done;
  Sim.Engine.run env.engine ~until:0.5;
  Alcotest.(check (list int)) "all delivered in order" (List.init 40 (fun i -> i + 1)) (seq env 0);
  Alcotest.(check (list int)) "learners agree" (seq env 0) (seq env 1)

let test_mring_batching () =
  let env = make_mring () in
  for i = 1 to 64 do
    ignore (Ringpaxos.Mring.submit env.mr ~proposer:0 ~size:256 (Cmd i))
  done;
  Sim.Engine.run env.engine ~until:0.5;
  let n_inst = Ringpaxos.Mring.decided env.mr in
  Alcotest.(check int) "all items" 64 (List.length (seq env 0));
  Alcotest.(check bool) "batched into few instances" true (n_inst <= 8)

let test_mring_ring_size () =
  let cfg = { Ringpaxos.Mring.default_config with f = 3 } in
  let env = make_mring ~config:cfg () in
  Alcotest.(check int) "ring has f+1 members" 4 (Ringpaxos.Mring.ring_size env.mr);
  ignore (Ringpaxos.Mring.submit env.mr ~proposer:0 ~size:100 (Cmd 1));
  Sim.Engine.run env.engine ~until:0.5;
  Alcotest.(check (list int)) "delivers through longer ring" [ 1 ] (seq env 0)

let test_mring_multi_proposer () =
  let env = make_mring ~n_proposers:3 () in
  for i = 1 to 30 do
    ignore (Ringpaxos.Mring.submit env.mr ~proposer:(i mod 3) ~size:200 (Cmd i))
  done;
  Sim.Engine.run env.engine ~until:0.5;
  Alcotest.(check int) "all delivered" 30 (List.length (seq env 0));
  Alcotest.(check (list int)) "agreement" (seq env 0) (seq env 1);
  Alcotest.(check (list int)) "no dup, no loss"
    (List.init 30 (fun i -> i + 1))
    (List.sort compare (seq env 0))

let test_mring_speculative_before_decision () =
  let spec_log = ref [] in
  let speculative ~learner ~inst v =
    if learner = 0 then spec_log := (inst, cmd_ids v) :: !spec_log
  in
  let env = make_mring ~speculative () in
  for i = 1 to 10 do
    ignore (Ringpaxos.Mring.submit env.mr ~proposer:0 ~size:256 (Cmd i))
  done;
  Sim.Engine.run env.engine ~until:0.5;
  let spec_cmds = List.concat_map snd (List.rev !spec_log) in
  Alcotest.(check (list int)) "speculative delivery sees all commands in order"
    (List.init 10 (fun i -> i + 1))
    spec_cmds;
  (* Speculative order must match the confirmed order. *)
  Alcotest.(check (list int)) "confirmed order matches" spec_cmds (seq env 0)

let test_mring_partitioned_skip () =
  let cfg = { Ringpaxos.Mring.default_config with partitions = 2 } in
  let learner_parts = function 0 -> [ 0 ] | _ -> [ 1 ] in
  let env = make_mring ~config:cfg ~learner_parts () in
  (* Commands 1..10 to partition 0, 11..20 to partition 1. *)
  for i = 1 to 10 do
    ignore (Ringpaxos.Mring.submit env.mr ~proposer:0 ~parts:[ 0 ] ~size:256 (Cmd i))
  done;
  for i = 11 to 20 do
    ignore (Ringpaxos.Mring.submit env.mr ~proposer:0 ~parts:[ 1 ] ~size:256 (Cmd i))
  done;
  Sim.Engine.run env.engine ~until:0.5;
  let s0 = seq env 0 and s1 = seq env 1 in
  Alcotest.(check bool) "learner 0 only sees partition 0" true
    (List.for_all (fun c -> c <= 10) s0 && List.length s0 = 10);
  Alcotest.(check bool) "learner 1 only sees partition 1" true
    (List.for_all (fun c -> c > 10) s1 && List.length s1 = 10);
  Alcotest.(check bool) "learner 0 skipped foreign instances" true (!(Hashtbl.find env.skips 0) > 0)

let test_mring_cross_partition_total_order () =
  (* Commands addressed to both partitions must be ordered identically
     relative to single-partition commands at both learners. *)
  let cfg = { Ringpaxos.Mring.default_config with partitions = 2; batch_bytes = 0 } in
  let learner_parts = function 0 -> [ 0 ] | _ -> [ 1 ] in
  let env = make_mring ~config:cfg ~learner_parts () in
  for i = 1 to 30 do
    let parts = if i mod 3 = 0 then [ 0; 1 ] else if i mod 3 = 1 then [ 0 ] else [ 1 ] in
    ignore (Ringpaxos.Mring.submit env.mr ~proposer:0 ~parts ~size:128 (Cmd i))
  done;
  Sim.Engine.run env.engine ~until:0.5;
  let cross = List.filter (fun c -> c mod 3 = 0) in
  Alcotest.(check (list int)) "cross-partition commands identically ordered"
    (cross (seq env 0)) (cross (seq env 1))

let test_mring_flow_control_shrinks_window () =
  let cfg = { Ringpaxos.Mring.default_config with fc_threshold = 8; window = 64 } in
  let env = make_mring ~config:cfg () in
  (* Learner 0 becomes extremely slow. *)
  Ringpaxos.Mring.set_learner_delay env.mr 0 2.0e-3;
  let stop =
    Simnet.every env.net ~period:2.0e-4 (fun () ->
        ignore (Ringpaxos.Mring.submit env.mr ~proposer:0 ~size:4096 (Cmd 0)))
  in
  Sim.Engine.run env.engine ~until:1.0;
  stop ();
  Alcotest.(check bool) "window reduced below maximum" true
    (Ringpaxos.Mring.current_window env.mr < 64)

let test_mring_window_recovers () =
  let cfg = { Ringpaxos.Mring.default_config with fc_threshold = 8; window = 64 } in
  let env = make_mring ~config:cfg () in
  Ringpaxos.Mring.set_learner_delay env.mr 0 2.0e-3;
  let stop =
    Simnet.every env.net ~period:2.0e-4 (fun () ->
        ignore (Ringpaxos.Mring.submit env.mr ~proposer:0 ~size:4096 (Cmd 0)))
  in
  Sim.Engine.run env.engine ~until:1.0;
  stop ();
  (* Learner speeds back up; the coordinator's window regrows. *)
  Ringpaxos.Mring.set_learner_delay env.mr 0 0.0;
  Sim.Engine.run env.engine ~until:3.0;
  Alcotest.(check int) "window back at maximum" 64 (Ringpaxos.Mring.current_window env.mr)

let test_mring_coordinator_failover () =
  let env = make_mring () in
  for i = 1 to 10 do
    ignore (Ringpaxos.Mring.submit env.mr ~proposer:0 ~size:128 (Cmd i))
  done;
  Sim.Engine.run env.engine ~until:0.3;
  Ringpaxos.Mring.kill_coordinator env.mr;
  Sim.Engine.run env.engine ~until:1.5;
  for i = 11 to 20 do
    ignore (Ringpaxos.Mring.submit env.mr ~proposer:0 ~size:128 (Cmd i))
  done;
  Sim.Engine.run env.engine ~until:3.0;
  let got = List.sort_uniq compare (seq env 0) in
  Alcotest.(check (list int)) "all commands survive coordinator crash"
    (List.init 20 (fun i -> i + 1))
    got;
  Alcotest.(check (list int)) "learners still agree" (seq env 0) (seq env 1)

let test_mring_acceptor_failover () =
  let env = make_mring () in
  for i = 1 to 10 do
    ignore (Ringpaxos.Mring.submit env.mr ~proposer:0 ~size:128 (Cmd i))
  done;
  Sim.Engine.run env.engine ~until:0.3;
  (* Kill the first in-ring acceptor; a spare must replace it. *)
  Ringpaxos.Mring.kill_ring_acceptor env.mr 0;
  Sim.Engine.run env.engine ~until:1.5;
  for i = 11 to 20 do
    ignore (Ringpaxos.Mring.submit env.mr ~proposer:0 ~size:128 (Cmd i))
  done;
  Sim.Engine.run env.engine ~until:3.0;
  let got = List.sort_uniq compare (seq env 0) in
  Alcotest.(check (list int)) "all commands survive acceptor crash"
    (List.init 20 (fun i -> i + 1))
    got

let test_mring_sync_disk_slower () =
  let run durability =
    let cfg = { Ringpaxos.Mring.default_config with durability } in
    let env = make_mring ~config:cfg () in
    let done_at = ref 0.0 in
    let stop =
      Simnet.every env.net ~period:1.0e-4 (fun () ->
          if Sim.Engine.now env.engine < 0.05 then
            ignore (Ringpaxos.Mring.submit env.mr ~proposer:0 ~size:1024 (Cmd 1)))
    in
    Sim.Engine.run env.engine ~until:1.0;
    stop ();
    done_at := Sim.Engine.now env.engine;
    List.length (seq env 0)
  in
  let mem = run Ringpaxos.Mring.Memory in
  let disk = run Ringpaxos.Mring.Sync_disk in
  Alcotest.(check bool) "sync disk not faster than memory" true (disk <= mem);
  Alcotest.(check bool) "sync disk still delivers" true (disk > 0)

let test_mring_gc_frees_memory () =
  let cfg = { Ringpaxos.Mring.default_config with gc_period = 0.02 } in
  let env = make_mring ~config:cfg () in
  for i = 1 to 100 do
    ignore (Ringpaxos.Mring.submit env.mr ~proposer:0 ~size:1024 (Cmd i))
  done;
  Sim.Engine.run env.engine ~until:2.0;
  let accs = Ringpaxos.Mring.acceptor_procs env.mr in
  let coord_mem = Simnet.mem (Ringpaxos.Mring.coordinator_proc env.mr) in
  ignore accs;
  (* After GC, the coordinator buffer should hold far less than the ~100 KB
     proposed. *)
  Alcotest.(check bool) "memory reclaimed" true (coord_mem < 50 * 1024)

(* --- M-Ring dynamic membership ------------------------------------------- *)

let test_mring_reconfigure_under_load () =
  (* A membership change ordered through the ring itself: traffic submitted
     before, across and after the boundary is delivered exactly once, in
     agreement, and the epoch turns over to the requested ring. *)
  let cfg = { Ringpaxos.Mring.default_config with f = 1 } in
  let env = make_mring ~config:cfg () in
  for i = 1 to 30 do
    ignore (Ringpaxos.Mring.submit env.mr ~proposer:0 ~size:128 (Cmd i))
  done;
  Sim.Engine.run env.engine ~until:0.2;
  (* Swap the first ring member for spare 2, keeping the coordinator. *)
  ignore (Ringpaxos.Mring.reconfigure env.mr ~ring:[ 2; 1 ] ());
  for i = 31 to 60 do
    ignore (Ringpaxos.Mring.submit env.mr ~proposer:0 ~size:128 (Cmd i))
  done;
  Sim.Engine.run env.engine ~until:2.0;
  Alcotest.(check (list int)) "no loss, no duplication across the epoch"
    (List.init 60 (fun i -> i + 1))
    (List.sort compare (seq env 0));
  Alcotest.(check (list int)) "learners agree" (seq env 0) (seq env 1);
  Alcotest.(check int) "epoch turned over" 1 (Ringpaxos.Mring.epoch env.mr);
  Alcotest.(check (list int)) "requested ring installed" [ 2; 1 ]
    (Ringpaxos.Mring.membership env.mr);
  Alcotest.(check bool) "reconfiguration finished" false
    (Ringpaxos.Mring.reconfiguring env.mr)

let test_mring_joiner_catches_up () =
  (* An acceptor added at runtime enters the ring and must replay the
     decided prefix below its activation instance via gap repair. *)
  let cfg = { Ringpaxos.Mring.default_config with f = 1 } in
  let env = make_mring ~config:cfg () in
  let joiner = Ringpaxos.Mring.add_acceptor env.mr in
  for i = 1 to 40 do
    ignore (Ringpaxos.Mring.submit env.mr ~proposer:0 ~size:128 (Cmd i))
  done;
  Sim.Engine.run env.engine ~until:0.3;
  ignore (Ringpaxos.Mring.reconfigure env.mr ~ring:[ joiner; 1 ] ());
  for i = 41 to 80 do
    ignore (Ringpaxos.Mring.submit env.mr ~proposer:0 ~size:128 (Cmd i))
  done;
  Sim.Engine.run env.engine ~until:3.0;
  Alcotest.(check bool) "joiner finished catching up" false
    (Ringpaxos.Mring.catching_up env.mr joiner);
  Alcotest.(check (list int)) "full history delivered"
    (List.init 80 (fun i -> i + 1))
    (List.sort compare (seq env 0));
  Alcotest.(check (list int)) "agreement" (seq env 0) (seq env 1);
  Alcotest.(check (list int)) "joiner serves in the ring" [ joiner; 1 ]
    (Ringpaxos.Mring.membership env.mr)

let test_mring_coordinator_handoff () =
  (* The reconfiguration moves the coordinator role: the old coordinator
     drains its in-flight instances, transfers its bookkeeping, and the
     new one takes over without losing or duplicating anything — even
     when the old coordinator dies right after the handoff. *)
  let cfg = { Ringpaxos.Mring.default_config with f = 2 } in
  let env = make_mring ~config:cfg () in
  for i = 1 to 40 do
    ignore (Ringpaxos.Mring.submit env.mr ~proposer:0 ~size:128 (Cmd i))
  done;
  Sim.Engine.run env.engine ~until:0.2;
  (* Ring [0;1;2] with acc2 coordinating; hand the role to spare 3. *)
  ignore (Ringpaxos.Mring.reconfigure env.mr ~ring:[ 0; 1; 3 ] ());
  Sim.Engine.run env.engine ~until:1.0;
  Ringpaxos.Mring.crash_acceptor env.mr 2;
  for i = 41 to 80 do
    ignore (Ringpaxos.Mring.submit env.mr ~proposer:0 ~size:128 (Cmd i))
  done;
  Sim.Engine.run env.engine ~until:3.0;
  Alcotest.(check (list int)) "zero lost or duplicated deliveries"
    (List.init 80 (fun i -> i + 1))
    (List.sort compare (seq env 0));
  Alcotest.(check (list int)) "agreement across the handoff" (seq env 0) (seq env 1);
  Alcotest.(check (list int)) "new coordinator's ring" [ 0; 1; 3 ]
    (Ringpaxos.Mring.membership env.mr)

let test_mring_staged_learner_delivers_suffix () =
  (* A learner staged before the run and activated by a reconfiguration
     delivers exactly the suffix from its activation instance: a
     contiguous tail of the established order, nothing from before. *)
  let cfg = { Ringpaxos.Mring.default_config with f = 1 } in
  let env = make_mring ~config:cfg () in
  let lrn = Ringpaxos.Mring.stage_learner env.mr ~parts:[ 0 ] in
  Hashtbl.replace env.seqs lrn (ref []);
  Hashtbl.replace env.skips lrn (ref 0);
  Alcotest.(check bool) "staged learner inactive" false
    (Ringpaxos.Mring.learner_active env.mr lrn);
  for i = 1 to 30 do
    ignore (Ringpaxos.Mring.submit env.mr ~proposer:0 ~size:128 (Cmd i))
  done;
  Sim.Engine.run env.engine ~until:0.3;
  Alcotest.(check (list int)) "nothing before activation" [] (seq env lrn);
  ignore (Ringpaxos.Mring.reconfigure env.mr ~add_learners:[ lrn ] ~ring:[ 0; 1 ] ());
  for i = 31 to 60 do
    ignore (Ringpaxos.Mring.submit env.mr ~proposer:0 ~size:128 (Cmd i))
  done;
  Sim.Engine.run env.engine ~until:3.0;
  Alcotest.(check bool) "activated" true (Ringpaxos.Mring.learner_active env.mr lrn);
  let full = seq env 0 and suffix = seq env lrn in
  Alcotest.(check bool) "delivered a non-empty suffix" true (suffix <> []);
  let skip = List.length full - List.length suffix in
  Alcotest.(check bool) "suffix no longer than the full history" true (skip >= 0);
  Alcotest.(check (list int)) "exactly the tail of the total order" suffix
    (List.filteri (fun i _ -> i >= skip) full)

let test_mring_learner_removal_stops_at_boundary () =
  (* A removed learner delivers a prefix — nothing past the activation —
     and its silence must not wedge garbage collection or delivery for
     the learners that remain. *)
  let cfg = { Ringpaxos.Mring.default_config with f = 1; gc_period = 0.02 } in
  let env = make_mring ~config:cfg () in
  for i = 1 to 30 do
    ignore (Ringpaxos.Mring.submit env.mr ~proposer:0 ~size:128 (Cmd i))
  done;
  Sim.Engine.run env.engine ~until:0.3;
  ignore (Ringpaxos.Mring.reconfigure env.mr ~remove_learners:[ 1 ] ~ring:[ 0; 1 ] ());
  Sim.Engine.run env.engine ~until:1.0;
  let frozen = seq env 1 in
  for i = 31 to 60 do
    ignore (Ringpaxos.Mring.submit env.mr ~proposer:0 ~size:128 (Cmd i))
  done;
  Sim.Engine.run env.engine ~until:3.0;
  Alcotest.(check bool) "removed learner deactivated" false
    (Ringpaxos.Mring.learner_active env.mr 1);
  Alcotest.(check (list int)) "no deliveries past the boundary" frozen (seq env 1);
  Alcotest.(check (list int)) "remaining learner unaffected"
    (List.init 60 (fun i -> i + 1))
    (List.sort compare (seq env 0));
  (* GC quorum now counts active learners only: memory keeps being
     reclaimed without learner 1's version reports. *)
  Alcotest.(check bool) "gc not wedged by the removed learner" true
    (Simnet.mem (Ringpaxos.Mring.coordinator_proc env.mr) < 50 * 1024)

(* --- U-Ring Paxos --------------------------------------------------------- *)

type uring_env = {
  uengine : Sim.Engine.t;
  unet : Simnet.t;
  ur : Ringpaxos.Uring.t;
  useqs : (int, int list ref) Hashtbl.t;
}

let make_uring ?(config = Ringpaxos.Uring.default_config) ?(n = 5) ?(seed = 21) () =
  let engine = Sim.Engine.create () in
  let rng = Sim.Rng.create seed in
  let net = Simnet.create engine rng in
  let useqs = Hashtbl.create 8 in
  for i = 0 to n - 1 do
    Hashtbl.replace useqs i (ref [])
  done;
  let deliver ~learner ~inst:_ v =
    let r = Hashtbl.find useqs learner in
    r := List.rev_append (cmd_ids v) !r
  in
  let ur =
    Ringpaxos.Uring.create net config ~positions:(Ringpaxos.Uring.standard_positions ~n)
      ~deliver
  in
  { uengine = engine; unet = net; ur; useqs }

let useq env l = List.rev !(Hashtbl.find env.useqs l)

let test_uring_basic () =
  let env = make_uring () in
  for i = 1 to 40 do
    ignore (Ringpaxos.Uring.submit env.ur ~proposer:0 ~size:256 (Cmd i))
  done;
  Sim.Engine.run env.uengine ~until:0.5;
  Alcotest.(check (list int)) "all delivered in order" (List.init 40 (fun i -> i + 1))
    (useq env 0)

let test_uring_all_learners_agree () =
  let env = make_uring ~n:7 () in
  for i = 1 to 30 do
    ignore (Ringpaxos.Uring.submit env.ur ~proposer:(i mod 7) ~size:256 (Cmd i))
  done;
  Sim.Engine.run env.uengine ~until:0.6;
  let s0 = useq env 0 in
  Alcotest.(check int) "everything delivered" 30 (List.length s0);
  for l = 1 to 6 do
    Alcotest.(check (list int)) (Printf.sprintf "learner %d agrees" l) s0 (useq env l)
  done

let test_uring_rejects_small_rings () =
  let engine = Sim.Engine.create () in
  let net = Simnet.create engine (Sim.Rng.create 1) in
  Alcotest.check_raises "needs 2f+1 acceptors"
    (Invalid_argument "Uring.create: needs at least 2f+1 acceptor positions") (fun () ->
      ignore
        (Ringpaxos.Uring.create net Ringpaxos.Uring.default_config
           ~positions:(Ringpaxos.Uring.standard_positions ~n:3)
           ~deliver:(fun ~learner:_ ~inst:_ _ -> ())))

let test_uring_batching () =
  let env = make_uring () in
  for i = 1 to 200 do
    ignore (Ringpaxos.Uring.submit env.ur ~proposer:0 ~size:256 (Cmd i))
  done;
  Sim.Engine.run env.uengine ~until:0.5;
  Alcotest.(check int) "all items" 200 (List.length (useq env 0));
  Alcotest.(check bool) "few instances (32K batches)" true (Ringpaxos.Uring.decided env.ur <= 8)

let test_uring_coordinator_failover () =
  let env = make_uring ~n:7 () in
  for i = 1 to 10 do
    ignore (Ringpaxos.Uring.submit env.ur ~proposer:2 ~size:128 (Cmd i))
  done;
  Sim.Engine.run env.uengine ~until:0.3;
  Ringpaxos.Uring.kill_coordinator env.ur;
  Sim.Engine.run env.uengine ~until:2.0;
  for i = 11 to 20 do
    ignore (Ringpaxos.Uring.submit env.ur ~proposer:2 ~size:128 (Cmd i))
  done;
  Sim.Engine.run env.uengine ~until:4.0;
  (* Learner 2 was never killed; it must have everything exactly once
     modulo resubmission duplicates, which U-Ring suppresses by uid. *)
  let got = List.sort_uniq compare (useq env 2) in
  Alcotest.(check (list int)) "all commands survive" (List.init 20 (fun i -> i + 1)) got

let test_uring_middle_failure () =
  let env = make_uring ~n:7 () in
  for i = 1 to 10 do
    ignore (Ringpaxos.Uring.submit env.ur ~proposer:2 ~size:128 (Cmd i))
  done;
  Sim.Engine.run env.uengine ~until:0.3;
  (* Kill a non-coordinator, non-voting ring member. *)
  Ringpaxos.Uring.kill_position env.ur 5;
  Sim.Engine.run env.uengine ~until:2.0;
  for i = 11 to 20 do
    ignore (Ringpaxos.Uring.submit env.ur ~proposer:2 ~size:128 (Cmd i))
  done;
  Sim.Engine.run env.uengine ~until:4.0;
  let got = List.sort_uniq compare (useq env 2) in
  Alcotest.(check (list int)) "ring reconfigures around dead member"
    (List.init 20 (fun i -> i + 1))
    got

let prop_mring_total_order =
  QCheck.Test.make ~name:"mring: random load keeps total order" ~count:15
    QCheck.(pair (int_range 1 80) (int_range 1 3))
    (fun (n_cmds, n_props) ->
      let env = make_mring ~n_proposers:n_props ~n_learners:3 ~seed:(n_cmds * 7) () in
      for i = 1 to n_cmds do
        ignore
          (Ringpaxos.Mring.submit env.mr ~proposer:(i mod n_props) ~size:(64 + (i mod 1024))
             (Cmd i))
      done;
      Sim.Engine.run env.engine ~until:2.0;
      let s0 = seq env 0 and s1 = seq env 1 and s2 = seq env 2 in
      List.length s0 = n_cmds && s0 = s1 && s1 = s2)

let prop_uring_total_order =
  QCheck.Test.make ~name:"uring: random load keeps total order" ~count:15
    QCheck.(int_range 1 80)
    (fun n_cmds ->
      let env = make_uring ~n:5 ~seed:(n_cmds * 13) () in
      for i = 1 to n_cmds do
        ignore (Ringpaxos.Uring.submit env.ur ~proposer:(i mod 5) ~size:(64 + (i mod 1024)) (Cmd i))
      done;
      Sim.Engine.run env.uengine ~until:2.0;
      let s0 = useq env 0 in
      List.length s0 = n_cmds
      && List.for_all (fun l -> useq env l = s0) [ 1; 2; 3; 4 ])

let suite =
  [ Alcotest.test_case "mring: basic order + agreement" `Quick test_mring_basic;
    Alcotest.test_case "mring: batching" `Quick test_mring_batching;
    Alcotest.test_case "mring: ring size = f+1" `Quick test_mring_ring_size;
    Alcotest.test_case "mring: multiple proposers" `Quick test_mring_multi_proposer;
    Alcotest.test_case "mring: speculative delivery" `Quick test_mring_speculative_before_decision;
    Alcotest.test_case "mring: partitioned skip" `Quick test_mring_partitioned_skip;
    Alcotest.test_case "mring: cross-partition order" `Quick test_mring_cross_partition_total_order;
    Alcotest.test_case "mring: flow control shrinks window" `Quick
      test_mring_flow_control_shrinks_window;
    Alcotest.test_case "mring: window recovers" `Quick test_mring_window_recovers;
    Alcotest.test_case "mring: coordinator failover" `Quick test_mring_coordinator_failover;
    Alcotest.test_case "mring: acceptor failover via spare" `Quick test_mring_acceptor_failover;
    Alcotest.test_case "mring: sync disk throttles" `Quick test_mring_sync_disk_slower;
    Alcotest.test_case "mring: gc frees memory" `Quick test_mring_gc_frees_memory;
    Alcotest.test_case "mring: reconfigure under load" `Quick test_mring_reconfigure_under_load;
    Alcotest.test_case "mring: joiner catches up" `Quick test_mring_joiner_catches_up;
    Alcotest.test_case "mring: coordinator handoff" `Quick test_mring_coordinator_handoff;
    Alcotest.test_case "mring: staged learner delivers suffix" `Quick
      test_mring_staged_learner_delivers_suffix;
    Alcotest.test_case "mring: learner removal stops at boundary" `Quick
      test_mring_learner_removal_stops_at_boundary;
    QCheck_alcotest.to_alcotest prop_mring_total_order;
    Alcotest.test_case "uring: basic order" `Quick test_uring_basic;
    Alcotest.test_case "uring: all learners agree" `Quick test_uring_all_learners_agree;
    Alcotest.test_case "uring: rejects small rings" `Quick test_uring_rejects_small_rings;
    Alcotest.test_case "uring: batching" `Quick test_uring_batching;
    Alcotest.test_case "uring: coordinator failover" `Quick test_uring_coordinator_failover;
    Alcotest.test_case "uring: middle member failure" `Quick test_uring_middle_failure;
    QCheck_alcotest.to_alcotest prop_uring_total_order ]
