let () =
  Alcotest.run "hpsmr"
    [ ("sim", Test_sim.suite);
      ("net", Test_net.suite);
      ("pool", Test_pool.suite);
      ("paxos", Test_paxos.suite);
      ("ringpaxos", Test_ringpaxos.suite);
      ("abcast", Test_abcast.suite);
      ("btree", Test_btree.suite);
      ("smr", Test_smr.suite);
      ("multiring", Test_multiring.suite);
      ("psmr", Test_psmr.suite);
      ("kv", Test_kv.suite);
      ("cloud", Test_cloud.suite);
      ("core", Test_core.suite);
      ("extra", Test_extra.suite);
      ("storage", Test_storage.suite);
      ("protocol", Test_protocol.suite);
      ("trace", Test_trace.suite);
      ("engine-equiv", Test_engine_equiv.suite);
      ("properties", Test_properties.suite);
      ("fault", Test_fault.suite) ]
