(* Tests for lib/trace: exports are a pure function of the seed, and a
   disabled tracer costs nothing — neither allocation nor perturbation of
   the traced run. *)

(* A short M-Ring run with [tracer] installed (when given); returns the
   number of delivered instances so runs can be compared for identical
   behaviour with tracing on, off and absent. *)
let mring_smoke ?tracer ~seed () =
  let engine = Sim.Engine.create () in
  let net = Simnet.create engine (Sim.Rng.create seed) in
  Simnet.set_tracer net tracer;
  let cfg = { Ringpaxos.Mring.default_config with f = 1 } in
  let delivered = ref 0 in
  let mr =
    Ringpaxos.Mring.create net cfg ~n_proposers:1 ~n_learners:2
      ~learner_parts:(fun _ -> [ 0 ])
      ~deliver:(fun ~learner:_ ~inst:_ _ -> incr delivered)
  in
  let stop =
    Simnet.every net ~period:1.0e-4 (fun () ->
        ignore (Ringpaxos.Mring.submit mr ~proposer:0 ~size:512 Simnet.Noop))
  in
  Sim.Engine.run engine ~until:0.05;
  stop ();
  !delivered

let test_same_seed_byte_identical_export () =
  let run () =
    let tr = Trace.create () in
    let delivered = mring_smoke ~tracer:tr ~seed:7 () in
    (delivered, Trace.to_chrome_json tr)
  in
  let d1, j1 = run () in
  let d2, j2 = run () in
  Alcotest.(check bool) "the run did something" true (d1 > 0);
  Alcotest.(check bool) "trace is non-trivial" true (String.length j1 > 1024);
  Alcotest.(check int) "same deliveries" d1 d2;
  Alcotest.(check string) "byte-identical export" j1 j2

let test_tracing_does_not_perturb_the_run () =
  (* Recording draws no randomness and schedules no events, so traced,
     trace-disabled and untraced runs of one seed behave identically. *)
  let untraced = mring_smoke ~seed:11 () in
  let traced = mring_smoke ~tracer:(Trace.create ()) ~seed:11 () in
  let off = Trace.create () in
  Trace.set_enabled off false;
  let disabled = mring_smoke ~tracer:off ~seed:11 () in
  Alcotest.(check int) "traced = untraced" untraced traced;
  Alcotest.(check int) "disabled = untraced" untraced disabled

let test_disabled_tracer_allocates_nothing () =
  let tr = Trace.create () in
  Trace.set_enabled tr false;
  let baseline = Obj.reachable_words (Obj.repr tr) in
  ignore (mring_smoke ~tracer:tr ~seed:3 ());
  Alcotest.(check int) "no events recorded" 0 (Trace.events tr);
  Alcotest.(check int) "nothing dropped" 0 (Trace.dropped tr);
  let words = Obj.reachable_words (Obj.repr tr) in
  (* Process-name registrations are identity, not events; the ring stays
     unallocated.  Anything beyond a few hundred words means the disabled
     path is buffering. *)
  Alcotest.(check bool)
    (Printf.sprintf "disabled tracer stays small (%d -> %d words)" baseline words)
    true
    (words - baseline < 512)

let test_export_shape () =
  (* Chrome trace_event array form: starts with '[', every event carries
     pid/ts, and the decomposition sees the recorded spans. *)
  let tr = Trace.create () in
  Trace.register tr ~pid:0 ~name:"role0";
  Trace.span tr ~pid:0 ~cat:"cpu" ~name:"work" ~ts:1.0e-3 ~dur:2.0e-3;
  Trace.instant tr ~pid:0 ~cat:"proto" ~name:"mark" ~ts:2.0e-3;
  Trace.counter tr ~pid:0 ~name:"depth" ~ts:3.0e-3 7;
  Trace.abegin tr ~pid:0 ~cat:"ordering" ~name:"consensus" ~id:4 ~ts:1.0e-3;
  Trace.aend tr ~pid:0 ~cat:"ordering" ~name:"consensus" ~id:4 ~ts:5.0e-3;
  let j = Trace.to_chrome_json tr in
  Alcotest.(check bool) "array form" true (String.length j > 2 && j.[0] = '[');
  Alcotest.(check int) "five events" 5 (Trace.events tr);
  let d = Trace.decomposition tr in
  let stages = match d with [ (_, s) ] -> List.map (fun (st, _, _, _) -> st) s | _ -> [] in
  Alcotest.(check (list string)) "cpu + ordering stages" [ "cpu"; "ordering" ] stages;
  (* An unmatched async end must not fabricate an interval. *)
  Trace.aend tr ~pid:0 ~cat:"ordering" ~name:"consensus" ~id:99 ~ts:6.0e-3;
  Alcotest.(check int) "unmatched end ignored" 5 (Trace.events tr)

let suite =
  [ Alcotest.test_case "same seed, byte-identical export" `Quick
      test_same_seed_byte_identical_export;
    Alcotest.test_case "tracing does not perturb the run" `Quick
      test_tracing_does_not_perturb_the_run;
    Alcotest.test_case "disabled tracer allocates nothing" `Quick
      test_disabled_tracer_allocates_nothing;
    Alcotest.test_case "chrome export shape + decomposition" `Quick test_export_shape ]
