(* Tests for parallel state-machine replication (Chapter 6). *)

let make ?(config = Psmr.default_config) ?(n_clients = 8) ?(dep_pct = 0) ?(n_objects = 1024)
    ?(seed = 101) () =
  let engine = Sim.Engine.create () in
  let net = Simnet.create engine (Sim.Rng.create seed) in
  let rng = Sim.Rng.create (seed + 1) in
  let gen _ =
    let dependent = Sim.Rng.int rng 100 < dep_pct in
    { Psmr.obj = Sim.Rng.int rng n_objects; dependent; size = 128 }
  in
  let sys = Psmr.create net config ~n_clients ~gen in
  (engine, sys)

let run_kcps ?(until = 1.0) engine sys =
  Psmr.start sys;
  Sim.Engine.run engine ~until;
  Smr.Metrics.kcps (Psmr.metrics sys) ~from:(until /. 2.0) ~till:until

let test_psmr_completes () =
  let engine, sys = make () in
  let kcps = run_kcps engine sys in
  Alcotest.(check bool) "completes commands" true (kcps > 0.1);
  Alcotest.(check bool) "executed at replica 0" true (Psmr.executed sys > 50)

let test_all_approaches_complete () =
  List.iter
    (fun approach ->
      let config = { Psmr.default_config with approach } in
      let engine, sys = make ~config () in
      let kcps = run_kcps ~until:0.5 engine sys in
      Alcotest.(check bool) "completes" true (kcps > 0.05))
    [ Psmr.Sequential; Psmr.Pipelined; Psmr.Sdpe; Psmr.Psmr ]

let test_psmr_scales_with_workers_independent () =
  (* Fig. 6.3/6.6: with independent commands, P-SMR throughput grows with
     workers while sequential stays flat. *)
  let tput approach n_workers =
    let config =
      { Psmr.default_config with approach; n_workers; exec_cost = 4.0e-5 }
    in
    let engine, sys = make ~config ~n_clients:200 () in
    run_kcps ~until:0.6 engine sys
  in
  let p1 = tput Psmr.Psmr 1 and p4 = tput Psmr.Psmr 4 in
  let s1 = tput Psmr.Sequential 1 and s4 = tput Psmr.Sequential 4 in
  Alcotest.(check bool)
    (Printf.sprintf "P-SMR scales (%.1f -> %.1f kcps)" p1 p4)
    true (p4 > p1 *. 2.0);
  Alcotest.(check bool)
    (Printf.sprintf "sequential does not (%.1f -> %.1f kcps)" s1 s4)
    true (s4 < s1 *. 1.5)

let test_dependent_commands_barrier () =
  let config = { Psmr.default_config with n_workers = 4 } in
  let engine, sys = make ~config ~dep_pct:100 ~n_clients:8 () in
  ignore (run_kcps ~until:0.5 engine sys);
  Alcotest.(check bool) "barriers executed" true (Psmr.barriers sys > 20);
  Alcotest.(check int) "every execution was a barrier" (Psmr.barriers sys) (Psmr.executed sys)

let test_dependent_no_scaling () =
  (* Fig. 6.4: with dependent commands P-SMR gains nothing from workers. *)
  let tput n_workers =
    let config = { Psmr.default_config with n_workers; exec_cost = 4.0e-5 } in
    let engine, sys = make ~config ~dep_pct:100 ~n_clients:32 () in
    run_kcps ~until:0.6 engine sys
  in
  let p1 = tput 1 and p4 = tput 4 in
  Alcotest.(check bool)
    (Printf.sprintf "no scaling on dependent (%.1f vs %.1f kcps)" p1 p4)
    true (p4 < p1 *. 1.5)

let test_mixed_workload_between () =
  (* Fig. 6.5: throughput degrades as the dependent share grows. *)
  let tput dep_pct =
    let config = { Psmr.default_config with n_workers = 4; exec_cost = 4.0e-5 } in
    let engine, sys = make ~config ~dep_pct ~n_clients:48 () in
    run_kcps ~until:0.6 engine sys
  in
  let t0 = tput 0 and t50 = tput 50 and t100 = tput 100 in
  Alcotest.(check bool)
    (Printf.sprintf "monotone degradation (%.1f, %.1f, %.1f)" t0 t50 t100)
    true
    (t0 > t50 && t50 > t100)

let test_sdpe_scheduler_bottleneck () =
  (* SDPE is capped by its scheduler even with many workers. *)
  let tput approach =
    let config =
      { Psmr.default_config with
        approach;
        n_workers = 8;
        exec_cost = 4.0e-5;
        sched_cost = 2.0e-5 }
    in
    let engine, sys = make ~config ~n_clients:200 () in
    run_kcps ~until:0.6 engine sys
  in
  let sdpe = tput Psmr.Sdpe and psmr = tput Psmr.Psmr in
  Alcotest.(check bool)
    (Printf.sprintf "P-SMR (%.1f) beats SDPE (%.1f) with 8 workers" psmr sdpe)
    true (psmr > sdpe *. 1.3)

let test_table_6_1 () =
  Alcotest.(check int) "five approaches" 5 (List.length Psmr.table_6_1);
  let s = Psmr.render_table_6_1 () in
  Alcotest.(check bool) "mentions P-SMR" true (Astring_contains.contains s "P-SMR")

let suite =
  [ Alcotest.test_case "psmr completes" `Quick test_psmr_completes;
    Alcotest.test_case "all approaches complete" `Quick test_all_approaches_complete;
    Alcotest.test_case "psmr scales with workers" `Quick
      test_psmr_scales_with_workers_independent;
    Alcotest.test_case "dependent commands barrier" `Quick test_dependent_commands_barrier;
    Alcotest.test_case "dependent: no scaling" `Quick test_dependent_no_scaling;
    Alcotest.test_case "mixed workloads degrade monotonically" `Quick
      test_mixed_workload_between;
    Alcotest.test_case "sdpe scheduler bottleneck" `Quick test_sdpe_scheduler_bottleneck;
    Alcotest.test_case "table 6.1" `Quick test_table_6_1 ]

let test_pipelined_beats_sequential_at_high_exec_cost () =
  (* Sequential SMR executes on the delivery thread, so heavy commands also
     stall its network processing; pipelined SMR moves execution to a
     dedicated thread (Fig. 6.1 b vs c). *)
  let tput approach =
    let config =
      { Psmr.default_config with approach; n_workers = 1; exec_cost = 3.0e-5 }
    in
    let engine, sys = make ~config ~n_clients:100 () in
    run_kcps ~until:0.8 engine sys
  in
  let seq = tput Psmr.Sequential and pipe = tput Psmr.Pipelined in
  Alcotest.(check bool)
    (Printf.sprintf "pipelined (%.1f) >= sequential (%.1f)" pipe seq)
    true (pipe >= seq *. 0.98)

let suite =
  suite
  @ [ Alcotest.test_case "pipelined >= sequential" `Quick
        test_pipelined_beats_sequential_at_high_exec_cost ]

(* --- uid widening (>255 clients) -------------------------------------------- *)

let test_uid_roundtrip_wide_origins () =
  (* The old uid layout kept 8 bits for the origin: proposer 256 wrapped to
     0 and responses went to the wrong client. *)
  List.iter
    (fun origin ->
      List.iter
        (fun seq ->
          let uid = Paxos.Value.make_uid ~seq ~origin in
          Alcotest.(check int) "origin survives" origin (Paxos.Value.uid_origin uid);
          Alcotest.(check int) "seq survives" seq (Paxos.Value.uid_seq uid))
        [ 0; 1; 255; 256; 100_000 ])
    [ 0; 1; 255; 256; 300; 1_000; 999_999 ]

let test_response_routing_past_255_clients () =
  let config = { Psmr.default_config with approach = Psmr.Sequential } in
  let _engine, sys = make ~config ~n_clients:300 () in
  (* Ring proposer c+1 is application client c; client 279 is past the old
     8-bit wrap point. *)
  let uid = Paxos.Value.make_uid ~seq:7 ~origin:280 in
  Alcotest.(check int) "client decode survives >255" 279
    (Psmr.Testing.responder_client sys ~uid);
  Alcotest.(check int) "responder replica from seq" (7 mod 2)
    (Psmr.Testing.responder_replica sys ~uid);
  (* And the wrapped decode would have picked client (280 land 0xff) - 1. *)
  Alcotest.(check bool) "differs from the wrapped decode" true
    (Psmr.Testing.responder_client sys ~uid <> (280 land 0xff) - 1)

let test_closed_loop_past_255_clients () =
  (* Liveness with a client population the old encoding could not address:
     all 300 closed-loop clients keep cycling. *)
  let config = { Psmr.default_config with approach = Psmr.Sequential } in
  let engine, sys = make ~config ~n_clients:300 () in
  ignore (run_kcps ~until:0.6 engine sys);
  Alcotest.(check bool) "hundreds of clients complete commands" true
    (Smr.Metrics.completed (Psmr.metrics sys) > 600)

(* --- per-replica metrics aggregation ----------------------------------------- *)

let test_metrics_aggregate_across_replicas () =
  let config = { Psmr.default_config with n_workers = 4 } in
  let engine, sys = make ~config ~dep_pct:50 ~n_clients:32 () in
  ignore (run_kcps ~until:0.5 engine sys);
  let per_replica_exec =
    List.init config.n_replicas (fun r -> Psmr.executed_at sys r)
  in
  let per_replica_barriers =
    List.init config.n_replicas (fun r -> Psmr.barriers_at sys r)
  in
  Alcotest.(check int) "executed is the sum over replicas"
    (List.fold_left ( + ) 0 per_replica_exec)
    (Psmr.executed sys);
  Alcotest.(check int) "barriers is the sum over replicas"
    (List.fold_left ( + ) 0 per_replica_barriers)
    (Psmr.barriers sys);
  (* Replicas execute the same stream: each must have done real work (the
     old accessors read replica 0 only, hiding the rest). *)
  List.iter
    (fun e -> Alcotest.(check bool) "every replica executed" true (e > 50))
    per_replica_exec;
  let u0 = Psmr.worker_utilization_at sys 0 ~from:0.1 ~till:0.5 in
  let u1 = Psmr.worker_utilization_at sys 1 ~from:0.1 ~till:0.5 in
  let agg = Psmr.worker_utilization sys ~from:0.1 ~till:0.5 in
  Alcotest.(check (float 1e-6)) "aggregate utilization is the mean"
    ((u0 +. u1) /. 2.0) agg

(* --- barrier completion tolerates interleaved independent heads --------------- *)

let test_barrier_drains_interleaved_heads () =
  (* Worker 1 has an independent command queued ahead of the barrier entry
     when the barrier completes.  The old completion scan asserted every
     joined worker's queue head was the barrier entry and crashed
     (Assert_failure) on this state; the fix drains the independent head
     first.  Built via Testing hooks because the current delivery
     discipline only produces the interleave under batched sinks. *)
  let config =
    { Psmr.default_config with approach = Psmr.Psmr; n_workers = 2; n_replicas = 1 }
  in
  let _engine, sys = make ~config ~n_clients:2 () in
  let barrier_uid = Paxos.Value.make_uid ~seq:1 ~origin:0 in
  let indep_uid = Paxos.Value.make_uid ~seq:2 ~origin:0 in
  let all = config.n_workers in
  (* Worker 0: barrier entry at head; pump makes it join. *)
  Psmr.Testing.enqueue sys ~replica:0 ~worker:0 ~group:all ~uid:barrier_uid;
  Psmr.Testing.pump sys ~replica:0 ~worker:0;
  Alcotest.(check int) "nothing executed yet" 0 (Psmr.executed sys);
  (* Worker 1: an independent entry is interleaved ahead of the barrier. *)
  Psmr.Testing.enqueue sys ~replica:0 ~worker:1 ~group:0 ~uid:indep_uid;
  Psmr.Testing.enqueue sys ~replica:0 ~worker:1 ~group:all ~uid:barrier_uid;
  (* Worker 1 joins with a foreign head: completes the barrier. *)
  Psmr.Testing.join sys ~replica:0 ~worker:1 ~uid:barrier_uid;
  Alcotest.(check int) "barrier executed" 1 (Psmr.barriers sys);
  Alcotest.(check int) "independent head drained and executed" 2
    (Psmr.executed sys);
  Alcotest.(check int) "worker 0 queue empty" 0
    (Psmr.Testing.queue_length sys ~replica:0 ~worker:0);
  Alcotest.(check int) "worker 1 queue empty" 0
    (Psmr.Testing.queue_length sys ~replica:0 ~worker:1)

(* --- dependency-aware executor ------------------------------------------------ *)

module Ex = Psmr.Executor

let exec_stream ?(n_workers = 4) ?(window = 32) ~mode keys =
  (* Self-clocked feed of single-key read-modify-writes; returns the
     executor, its service and the per-command reports. *)
  let svc = Smr.Btree_service.create ~initial_keys:100 ~key_range:100_000 ~seed:1 () in
  let ex = Ex.create ~mode ~n_workers svc.Smr.Btree_service.service in
  let n = Array.length keys in
  let commits = Array.make n 0.0 in
  let reports =
    Array.mapi
      (fun i key ->
        let now = if i < window then 0.0 else commits.(i - window) in
        let ks = Btree.Keyset.singleton key in
        let r =
          Ex.submit ex ~now ~uid:i ~reads:ks ~writes:ks
            (Smr.Btree_service.Insert { key; value = i })
        in
        commits.(i) <- r.Ex.r_commit;
        r)
      keys
  in
  (ex, svc, reports)

let hot_stream ?(n = 400) ?(hot_pct = 30) ?(n_hot = 4) seed =
  let rng = Sim.Rng.create seed in
  Array.init n (fun i ->
      if Sim.Rng.int rng 100 < hot_pct then 1 + Sim.Rng.int rng n_hot
      else 100 + i)

let sequential_fingerprint keys =
  let _, svc, _ = exec_stream ~n_workers:1 ~mode:Ex.Pessimistic keys in
  Smr.Btree_service.fingerprint svc

let test_executor_conflict_serialization () =
  (* Pessimistic mode: conflicting commands (same key) never overlap in
     simulated time, and the final tree equals the sequential reference. *)
  let keys = hot_stream 7 in
  let _, svc, reports = exec_stream ~mode:Ex.Pessimistic keys in
  let n = Array.length keys in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      if keys.(i) = keys.(j) then begin
        let ri = reports.(i) and rj = reports.(j) in
        if not (ri.Ex.r_fin <= rj.Ex.r_start || rj.Ex.r_fin <= ri.Ex.r_start)
        then
          Alcotest.failf "conflicting %d and %d overlap: [%f,%f) vs [%f,%f)" i
            j ri.Ex.r_start ri.Ex.r_fin rj.Ex.r_start rj.Ex.r_fin
      end
    done
  done;
  Alcotest.(check int) "state equals sequential reference"
    (sequential_fingerprint keys)
    (Smr.Btree_service.fingerprint svc)

let test_executor_commits_in_log_order () =
  let keys = hot_stream 8 in
  List.iter
    (fun mode ->
      let _, _, reports = exec_stream ~mode keys in
      Array.iteri
        (fun i r ->
          if i > 0 && r.Ex.r_commit < reports.(i - 1).Ex.r_commit then
            Alcotest.failf "command %d committed before its predecessor" i)
        reports)
    [ Ex.Pessimistic; Ex.Optimistic ]

let test_executor_rollback_safety () =
  (* Optimistic mode on a hot stream must roll back, and rolled-back
     writes must never be observable: the final tree still equals the
     sequential reference. *)
  let keys = hot_stream ~hot_pct:60 9 in
  let ex, svc, reports = exec_stream ~mode:Ex.Optimistic keys in
  Alcotest.(check bool) "rollbacks happened" true (Ex.rollbacks ex > 0);
  Alcotest.(check bool) "conflicts detected" true (Ex.conflicts ex > 0);
  Alcotest.(check int) "reports count rollbacks too" (Ex.rollbacks ex)
    (Array.fold_left (fun a r -> a + r.Ex.r_rollbacks) 0 reports);
  Alcotest.(check int) "state equals sequential reference despite rollbacks"
    (sequential_fingerprint keys)
    (Smr.Btree_service.fingerprint svc)

let test_executor_rollback_determinism () =
  (* Same seed, same stream: identical rollback counts and state. *)
  List.iter
    (fun seed ->
      let keys = hot_stream ~hot_pct:50 seed in
      let ex1, svc1, _ = exec_stream ~mode:Ex.Optimistic keys in
      let ex2, svc2, _ = exec_stream ~mode:Ex.Optimistic keys in
      Alcotest.(check int) "rollback count deterministic" (Ex.rollbacks ex1)
        (Ex.rollbacks ex2);
      Alcotest.(check int) "state deterministic"
        (Smr.Btree_service.fingerprint svc1)
        (Smr.Btree_service.fingerprint svc2))
    [ 3; 4; 5 ]

let prop_executor_modes_agree =
  (* Random key streams: optimistic, pessimistic and sequential execution
     all end in the same tree. *)
  QCheck.Test.make ~name:"executor: optimistic = pessimistic = sequential"
    ~count:40
    QCheck.(list_of_size Gen.(int_range 1 120) (int_range 1 16))
    (fun keys ->
      let keys = Array.of_list keys in
      let seq = sequential_fingerprint keys in
      let _, p, _ = exec_stream ~mode:Ex.Pessimistic keys in
      let _, o, _ = exec_stream ~mode:Ex.Optimistic keys in
      Smr.Btree_service.fingerprint p = seq
      && Smr.Btree_service.fingerprint o = seq)

(* --- executor approaches end to end ------------------------------------------- *)

let test_executor_approaches_end_to_end () =
  List.iter
    (fun approach ->
      let config = { Psmr.default_config with approach } in
      let engine, sys = make ~config ~dep_pct:5 ~n_clients:16 () in
      let kcps = run_kcps ~until:0.5 engine sys in
      Alcotest.(check bool) "completes" true (kcps > 0.05);
      Alcotest.(check int) "replicas agree on final state"
        (Psmr.state_fingerprint_at sys 0)
        (Psmr.state_fingerprint_at sys 1);
      if approach = Psmr.Optimistic then
        Alcotest.(check bool) "rollbacks surface in metrics" true
          (Smr.Metrics.rollbacks (Psmr.metrics sys) > 0
          = (Psmr.rollbacks sys > 0)))
    [ Psmr.Depaware; Psmr.Optimistic ]

let test_open_loop_drive () =
  (* Open-loop driving: arrivals are paced by the generator's rate curve,
     not by responses; commands complete and latency is recorded. *)
  let config = { Psmr.default_config with approach = Psmr.Depaware } in
  let engine, sys = make ~config ~n_clients:16 () in
  let wl =
    Smr.Workload.Open_loop.create (Sim.Rng.create 5) ~key_range:100_000
      ~rate:(Smr.Workload.Open_loop.Constant 10_000.0)
  in
  Psmr.start_open sys wl ~until:0.4;
  Sim.Engine.run engine ~until:0.5;
  let done_ = Smr.Metrics.completed (Psmr.metrics sys) in
  Alcotest.(check bool)
    (Printf.sprintf "open-loop commands complete (%d)" done_)
    true
    (done_ > 2_000 && done_ + Psmr.open_drops sys <= Smr.Workload.Open_loop.generated wl)

let suite =
  suite
  @ [ Alcotest.test_case "uid roundtrip, wide origins" `Quick
        test_uid_roundtrip_wide_origins;
      Alcotest.test_case "response routing past 255 clients" `Quick
        test_response_routing_past_255_clients;
      Alcotest.test_case "closed loop with 300 clients" `Quick
        test_closed_loop_past_255_clients;
      Alcotest.test_case "metrics aggregate across replicas" `Quick
        test_metrics_aggregate_across_replicas;
      Alcotest.test_case "barrier drains interleaved heads" `Quick
        test_barrier_drains_interleaved_heads;
      Alcotest.test_case "executor: conflict serialization" `Quick
        test_executor_conflict_serialization;
      Alcotest.test_case "executor: commits in log order" `Quick
        test_executor_commits_in_log_order;
      Alcotest.test_case "executor: rollback safety" `Quick
        test_executor_rollback_safety;
      Alcotest.test_case "executor: rollback determinism" `Quick
        test_executor_rollback_determinism;
      QCheck_alcotest.to_alcotest prop_executor_modes_agree;
      Alcotest.test_case "executor approaches end to end" `Quick
        test_executor_approaches_end_to_end;
      Alcotest.test_case "open-loop drive" `Quick test_open_loop_drive ]

let test_open_loop_drop_accounting () =
  (* Shrink the proposer window so the ring refuses arrivals mid-run:
     every arrival the driver consumes must land in exactly one of
     issued or drops — no discarded lookahead at the horizon, no
     double-issue, and drops never enter the completion count. *)
  let config =
    { Psmr.default_config with
      approach = Psmr.Depaware;
      ring =
        { Ringpaxos.Mring.default_config with proposer_buffer = 4 * 1024 } }
  in
  let engine, sys = make ~config ~n_clients:2 () in
  let wl =
    Smr.Workload.Open_loop.create (Sim.Rng.create 9) ~key_range:100_000
      ~rate:(Smr.Workload.Open_loop.Constant 20_000.0)
  in
  Psmr.start_open sys wl ~until:0.4;
  Sim.Engine.run engine ~until:0.6;
  Alcotest.(check bool)
    (Printf.sprintf "window overflow dropped arrivals (%d)"
       (Psmr.open_drops sys))
    true
    (Psmr.open_drops sys > 0);
  Alcotest.(check int) "generated = issued + drops"
    (Smr.Workload.Open_loop.generated wl)
    (Psmr.open_issued sys + Psmr.open_drops sys);
  Alcotest.(check bool) "completions bounded by issued" true
    (Smr.Metrics.completed (Psmr.metrics sys) <= Psmr.open_issued sys)

let suite =
  suite
  @ [ Alcotest.test_case "open-loop drop accounting" `Quick
        test_open_loop_drop_accounting ]
