(* Tests for Multi-Ring Paxos (Chapter 5): deterministic merge, skip
   messages, scalability behaviour and coordinator failure. *)

type Simnet.payload += Cmd of int

let make ?(config = Multiring.default_config) ?(n_learners = 1)
    ?(subs = fun _ -> List.init config.Multiring.n_rings Fun.id) ?(seed = 91) () =
  let engine = Sim.Engine.create () in
  let net = Simnet.create engine (Sim.Rng.create seed) in
  let log = Hashtbl.create 8 in
  (* learner -> reversed (group, cmd) list *)
  let deliver ~learner ~group (it : Paxos.Value.item) =
    match it.app with
    | Cmd i ->
        let prev = Option.value ~default:[] (Hashtbl.find_opt log learner) in
        Hashtbl.replace log learner ((group, i) :: prev)
    | _ -> ()
  in
  let mr = Multiring.create net config ~n_learners ~subs ~proposers_per_ring:1 ~deliver in
  (engine, net, mr, log)

let seq log l = List.rev (Option.value ~default:[] (Hashtbl.find_opt log l))

let test_single_ring_delivers () =
  let cfg = { Multiring.default_config with n_rings = 1 } in
  let engine, _, mr, log = make ~config:cfg () in
  for i = 1 to 20 do
    ignore (Multiring.multicast mr ~group:0 ~proposer:0 ~size:256 (Cmd i))
  done;
  Sim.Engine.run engine ~until:0.5;
  Alcotest.(check (list (pair int int))) "in order"
    (List.init 20 (fun i -> (0, i + 1)))
    (seq log 0)

let test_two_rings_merge_deterministic () =
  let cfg = { Multiring.default_config with n_rings = 2; lambda = 20_000.0 } in
  let engine, _, mr, log = make ~config:cfg ~n_learners:2 () in
  for i = 1 to 30 do
    ignore (Multiring.multicast mr ~group:(i mod 2) ~proposer:0 ~size:256 (Cmd i))
  done;
  Sim.Engine.run engine ~until:0.5;
  let s0 = seq log 0 and s1 = seq log 1 in
  Alcotest.(check int) "everything delivered" 30 (List.length s0);
  Alcotest.(check (list (pair int int))) "identical merged order at both learners" s0 s1

let test_skips_unblock_idle_ring () =
  (* Ring 1 is silent; without skips the merge would stall forever. *)
  let cfg = { Multiring.default_config with n_rings = 2; lambda = 5_000.0 } in
  let engine, _, mr, log = make ~config:cfg () in
  for i = 1 to 20 do
    ignore (Multiring.multicast mr ~group:0 ~proposer:0 ~size:256 (Cmd i))
  done;
  Sim.Engine.run engine ~until:1.0;
  Alcotest.(check int) "all of group 0 delivered despite idle group 1" 20
    (List.length (seq log 0));
  Alcotest.(check bool) "skips were proposed for the idle ring" true
    (Multiring.skips_proposed mr 1 > 0)

let test_no_skips_stalls () =
  (* The lambda = 0 configuration of Fig. 5.8: merge stalls on the idle
     ring. *)
  let cfg = { Multiring.default_config with n_rings = 2; lambda = 0.0; m = 1 } in
  let engine, _, mr, log = make ~config:cfg () in
  for i = 1 to 20 do
    ignore (Multiring.multicast mr ~group:0 ~proposer:0 ~size:256 (Cmd i))
  done;
  Sim.Engine.run engine ~until:1.0;
  (* With m = 1 and strict round-robin, at most one message can be merged
     before waiting on group 1. *)
  Alcotest.(check bool) "merge stalls without skips" true (List.length (seq log 0) <= 1);
  Alcotest.(check bool) "messages are buffered, not lost" true
    (Multiring.learner_buffer mr 0 >= 19)

let test_single_subscription_unaffected () =
  (* A learner of only group 0 needs no merge and no skips. *)
  let cfg = { Multiring.default_config with n_rings = 2; lambda = 0.0 } in
  let subs = function 0 -> [ 0 ] | _ -> [ 1 ] in
  let engine, _, mr, log = make ~config:cfg ~n_learners:2 ~subs () in
  for i = 1 to 20 do
    ignore (Multiring.multicast mr ~group:0 ~proposer:0 ~size:256 (Cmd i))
  done;
  Sim.Engine.run engine ~until:0.5;
  Alcotest.(check int) "dedicated learner flows freely" 20 (List.length (seq log 0));
  Alcotest.(check int) "other learner sees nothing" 0 (List.length (seq log 1))

let test_m_preserves_order () =
  let cfg = { Multiring.default_config with n_rings = 2; m = 10; lambda = 20_000.0 } in
  let engine, _, mr, log = make ~config:cfg ~n_learners:2 () in
  for i = 1 to 40 do
    ignore (Multiring.multicast mr ~group:(i mod 2) ~proposer:0 ~size:256 (Cmd i))
  done;
  Sim.Engine.run engine ~until:0.5;
  Alcotest.(check int) "all delivered" 40 (List.length (seq log 0));
  Alcotest.(check (list (pair int int))) "m=10 merge still deterministic"
    (seq log 0) (seq log 1);
  (* Per-group subsequences keep their ring order. *)
  let ring_order g = List.filter (fun (g', _) -> g' = g) (seq log 0) |> List.map snd in
  Alcotest.(check (list int)) "group 0 FIFO" (List.sort compare (ring_order 0)) (ring_order 0);
  Alcotest.(check (list int)) "group 1 FIFO" (List.sort compare (ring_order 1)) (ring_order 1)

let test_buffer_overflow_halts () =
  let cfg =
    { Multiring.default_config with n_rings = 2; lambda = 0.0; buffer_items = 10 }
  in
  let engine, _, mr, log = make ~config:cfg () in
  for i = 1 to 50 do
    ignore (Multiring.multicast mr ~group:0 ~proposer:0 ~size:256 (Cmd i))
  done;
  Sim.Engine.run engine ~until:1.0;
  ignore log;
  Alcotest.(check bool) "learner halted on overflow" true (Multiring.learner_halted mr 0)

let test_coordinator_failure_recovery () =
  (* Fig. 5.11: kill the coordinator of ring 0; delivery stalls, then
     catches up after the ring recovers and skips cover the outage. *)
  let cfg = { Multiring.default_config with n_rings = 2; lambda = 5_000.0 } in
  let engine, net, mr, _log = make ~config:cfg () in
  let stop =
    Simnet.every net ~period:1.0e-3 (fun () ->
        ignore (Multiring.multicast mr ~group:0 ~proposer:0 ~size:256 (Cmd 0));
        ignore (Multiring.multicast mr ~group:1 ~proposer:0 ~size:256 (Cmd 0)))
  in
  Sim.Engine.run engine ~until:0.5;
  let before = Multiring.learner_delivered mr 0 in
  Multiring.kill_ring_coordinator mr 0;
  Sim.Engine.run engine ~until:0.8;
  Sim.Engine.run engine ~until:3.0;
  stop ();
  Sim.Engine.run engine ~until:4.0;
  let after = Multiring.learner_delivered mr 0 in
  Alcotest.(check bool) "delivered before failure" true (before > 100);
  Alcotest.(check bool)
    (Printf.sprintf "delivery resumes after recovery (%d -> %d)" before after)
    true
    (after > before + 500)

let test_reconfigure_keeps_merge_running () =
  (* Reconfigure ring 0 mid-run (spare 2 replaces the coordinator's
     ring-mate): the handoff refuses skip proposals for a window, and the
     controller must carry that deficit forward so neither ring's merge
     column starves — every message from both rings still comes out, in
     the same order at both learners. *)
  let cfg =
    { Multiring.default_config with
      n_rings = 2;
      lambda = 5_000.0;
      ring = { Ringpaxos.Mring.default_config with f = 1 } }
  in
  let engine, net, mr, log = make ~config:cfg ~n_learners:2 () in
  let next = ref 0 in
  let stop =
    Simnet.every net ~period:1.0e-3 (fun () ->
        incr next;
        ignore (Multiring.multicast mr ~group:(!next mod 2) ~proposer:0 ~size:256 (Cmd !next)))
  in
  Sim.Engine.run engine ~until:0.3;
  ignore (Multiring.reconfigure_ring mr 0 ~ring:[ 0; 2 ]);
  Sim.Engine.run engine ~until:1.0;
  stop ();
  Sim.Engine.run engine ~until:3.0;
  Alcotest.(check int) "ring 0 epoch turned over" 1 (Multiring.ring_epoch mr 0);
  Alcotest.(check int) "ring 1 epoch untouched" 0 (Multiring.ring_epoch mr 1);
  let s0 = seq log 0 in
  Alcotest.(check int) "nothing lost across the handoff" !next (List.length s0);
  Alcotest.(check (list (pair int int))) "merge stays deterministic" s0 (seq log 1);
  let ring_order g = List.filter (fun (g', _) -> g' = g) s0 |> List.map snd in
  Alcotest.(check (list int)) "group 0 FIFO across epochs"
    (List.sort compare (ring_order 0)) (ring_order 0);
  Alcotest.(check (list int)) "group 1 FIFO"
    (List.sort compare (ring_order 1)) (ring_order 1)

let prop_merge_agreement =
  QCheck.Test.make ~name:"multiring: learners merge identically" ~count:10
    QCheck.(pair (int_range 2 4) (int_range 10 50))
    (fun (n_rings, n_msgs) ->
      let cfg = { Multiring.default_config with n_rings; lambda = 20_000.0 } in
      let engine, _, mr, log = make ~config:cfg ~n_learners:2 ~seed:(n_msgs * 31) () in
      for i = 1 to n_msgs do
        ignore (Multiring.multicast mr ~group:(i mod n_rings) ~proposer:0 ~size:256 (Cmd i))
      done;
      Sim.Engine.run engine ~until:1.5;
      let s0 = seq log 0 in
      List.length s0 = n_msgs && s0 = seq log 1)

let suite =
  [ Alcotest.test_case "single ring delivers" `Quick test_single_ring_delivers;
    Alcotest.test_case "two rings merge deterministically" `Quick
      test_two_rings_merge_deterministic;
    Alcotest.test_case "skips unblock idle ring" `Quick test_skips_unblock_idle_ring;
    Alcotest.test_case "lambda=0 stalls merge" `Quick test_no_skips_stalls;
    Alcotest.test_case "single-subscription learner unaffected" `Quick
      test_single_subscription_unaffected;
    Alcotest.test_case "m=10 merge order" `Quick test_m_preserves_order;
    Alcotest.test_case "buffer overflow halts learner" `Quick test_buffer_overflow_halts;
    Alcotest.test_case "coordinator failure + catch-up" `Quick
      test_coordinator_failure_recovery;
    Alcotest.test_case "reconfiguration keeps the merge running" `Quick
      test_reconfigure_keeps_merge_running;
    QCheck_alcotest.to_alcotest prop_merge_agreement ]

let test_groups_share_rings () =
  (* gamma = 4 groups over delta = 2 rings (§5.2.4): ordering still works,
     and a single-group learner receives (and discards) co-hosted traffic. *)
  let cfg =
    { Multiring.default_config with n_rings = 2; n_groups = 4; lambda = 20_000.0 }
  in
  let subs = function 0 -> [ 0 ] | _ -> [ 0; 1; 2; 3 ] in
  let engine, _, mr, log = make ~config:cfg ~n_learners:2 ~subs () in
  for i = 1 to 40 do
    ignore (Multiring.multicast mr ~group:(i mod 4) ~proposer:0 ~size:256 (Cmd i))
  done;
  Sim.Engine.run engine ~until:1.0;
  let s0 = seq log 0 and s1 = seq log 1 in
  Alcotest.(check int) "all-group learner got everything" 40 (List.length s1);
  Alcotest.(check bool) "single-group learner got only group 0" true
    (List.for_all (fun (g, _) -> g = 0) s0 && List.length s0 = 10);
  (* Group 0 shares ring 0 with group 2: learner 0 pays for group 2. *)
  Alcotest.(check bool) "foreign traffic observed and discarded" true
    (Multiring.foreign_items mr 0 > 0);
  (* Merged order per group is identical across learners. *)
  let only g l = List.filter (fun (g', _) -> g' = g) l in
  Alcotest.(check (list (pair int int))) "group-0 order agrees" (only 0 s0) (only 0 s1)

let suite = suite @ [ Alcotest.test_case "gamma groups over delta rings" `Quick test_groups_share_rings ]
